package kv

import "container/heap"

// MergingIterator merges several iterators in Compare order. Iterators
// supplied earlier take precedence at equal internal order (which cannot
// happen with unique sequence numbers, but keeps the merge deterministic).
type MergingIterator struct {
	h mergeHeap
}

type mergeItem struct {
	it   Iterator
	rank int
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	c := Compare(h[i].it.Entry(), h[j].it.Entry())
	if c != 0 {
		return c < 0
	}
	return h[i].rank < h[j].rank
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewMergingIterator combines its. The result starts positioned at the first
// entry (as if SeekToFirst had been called).
func NewMergingIterator(its ...Iterator) *MergingIterator {
	for _, it := range its {
		it.SeekToFirst()
	}
	return NewMergingIteratorAt(its...)
}

// NewMergingIteratorAt combines sources that the caller has already
// positioned (e.g. with SeekGE); it does not rewind them.
func NewMergingIteratorAt(its ...Iterator) *MergingIterator {
	m := &MergingIterator{}
	for rank, it := range its {
		if it.Valid() {
			m.h = append(m.h, mergeItem{it: it, rank: rank})
		}
	}
	heap.Init(&m.h)
	return m
}

// Valid implements Iterator.
func (m *MergingIterator) Valid() bool { return len(m.h) > 0 }

// Entry implements Iterator.
func (m *MergingIterator) Entry() Entry { return m.h[0].it.Entry() }

// Next implements Iterator.
func (m *MergingIterator) Next() {
	top := &m.h[0]
	top.it.Next()
	if top.it.Valid() {
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
}

// SeekToFirst implements Iterator.
func (m *MergingIterator) SeekToFirst() {
	items := m.h
	m.h = m.h[:0]
	seen := make(map[int]bool, len(items))
	for _, item := range items {
		if seen[item.rank] {
			continue
		}
		seen[item.rank] = true
		item.it.SeekToFirst()
		if item.it.Valid() {
			m.h = append(m.h, item)
		}
	}
	heap.Init(&m.h)
}

// SeekGE implements Iterator. Note: iterators that were exhausted by earlier
// advancement are re-seeked too, so SeekGE may revive them.
func (m *MergingIterator) SeekGE(key []byte) {
	// Rebuild from every source we were constructed with: sources currently
	// exhausted may contain keys >= key.
	for i := range m.h {
		m.h[i].it.SeekGE(key)
	}
	live := m.h[:0]
	for _, item := range m.h {
		if item.it.Valid() {
			live = append(live, item)
		}
	}
	m.h = live
	heap.Init(&m.h)
}

// DedupIterator wraps an iterator in Compare order and yields only the newest
// version of each user key, optionally dropping tombstones (for a
// bottom-level merge where deleted keys can vanish entirely). Entry's Key and
// Value buffers are freshly allocated per entry and never reused, so callers
// may retain them past Next without copying (the engine's scan path relies on
// this to avoid a second copy).
type DedupIterator struct {
	in            Iterator
	dropTombstone bool
	cur           Entry
	curKey        []byte
	valid         bool
}

// NewDedupIterator wraps in; in must already be positioned via SeekToFirst by
// the caller or the returned iterator's SeekToFirst.
func NewDedupIterator(in Iterator, dropTombstones bool) *DedupIterator {
	d := &DedupIterator{in: in, dropTombstone: dropTombstones}
	d.advance()
	return d
}

// advance moves to the next newest-version entry.
func (d *DedupIterator) advance() {
	for d.in.Valid() {
		e := d.in.Entry()
		if d.curKey != nil && string(e.Key) == string(d.curKey) {
			d.in.Next()
			continue // stale version of the same key
		}
		// Newest version of a new key.
		d.curKey = append(d.curKey[:0], e.Key...)
		if d.dropTombstone && e.Kind == KindDelete {
			d.in.Next()
			continue
		}
		// Copy out: the source may invalidate on Next.
		d.cur = Entry{
			Key:   append([]byte(nil), e.Key...),
			Value: append([]byte(nil), e.Value...),
			Seq:   e.Seq,
			Kind:  e.Kind,
		}
		d.valid = true
		d.in.Next()
		return
	}
	d.valid = false
}

// Valid implements Iterator.
func (d *DedupIterator) Valid() bool { return d.valid }

// Entry implements Iterator.
func (d *DedupIterator) Entry() Entry { return d.cur }

// Next implements Iterator.
func (d *DedupIterator) Next() { d.advance() }

// SeekToFirst implements Iterator.
func (d *DedupIterator) SeekToFirst() {
	d.in.SeekToFirst()
	d.curKey = nil
	d.advance()
}

// SeekGE implements Iterator.
func (d *DedupIterator) SeekGE(key []byte) {
	d.in.SeekGE(key)
	d.curKey = nil
	d.advance()
}
