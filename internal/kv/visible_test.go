package kv

import (
	"fmt"
	"testing"
)

func collect(it Iterator) []Entry {
	var out []Entry
	for ; it.Valid(); it.Next() {
		e := it.Entry()
		out = append(out, Entry{
			Key:   append([]byte(nil), e.Key...),
			Value: append([]byte(nil), e.Value...),
			Seq:   e.Seq,
			Kind:  e.Kind,
		})
	}
	return out
}

func TestVisibleIteratorFiltersBeforeDedup(t *testing.T) {
	// Key "a" was overwritten at seq 5, after a snapshot at seq 3. Naive
	// dedup-then-filter drops the key entirely; visibility-before-dedup
	// resolves it to the seq-2 version.
	entries := []Entry{
		{Key: []byte("a"), Value: []byte("new"), Seq: 5},
		{Key: []byte("a"), Value: []byte("old"), Seq: 2},
		{Key: []byte("b"), Value: []byte("b-only-new"), Seq: 4},
	}
	it := NewDedupIterator(NewVisibleIterator(NewSliceIterator(entries), 3), false)
	got := collect(it)
	if len(got) != 1 || string(got[0].Key) != "a" || string(got[0].Value) != "old" {
		t.Fatalf("got %v, want [a=old]", got)
	}
}

func TestVisibleIteratorSeek(t *testing.T) {
	entries := []Entry{
		{Key: []byte("a"), Seq: 9},
		{Key: []byte("a"), Seq: 1},
		{Key: []byte("b"), Seq: 8},
	}
	it := NewVisibleIterator(NewSliceIterator(entries), 5)
	it.SeekGE([]byte("a"))
	if !it.Valid() || it.Entry().Seq != 1 {
		t.Fatalf("SeekGE(a) should settle on a@1, got %v", it.Entry())
	}
	it.SeekGE([]byte("b"))
	if it.Valid() {
		t.Fatal("SeekGE(b) should be exhausted: b@8 postdates the snapshot")
	}
	it.SeekToFirst()
	if !it.Valid() || string(it.Entry().Key) != "a" || it.Entry().Seq != 1 {
		t.Fatalf("SeekToFirst should settle on a@1, got %v", it.Entry())
	}
}

// retain runs a Retainer over entries (already in internal-key order) and
// returns what survives.
func retain(entries []Entry, bounds []uint64, dropTombstones bool) []Entry {
	return collect(NewRetainIterator(NewSliceIterator(entries), bounds, dropTombstones))
}

func TestRetainerNoBoundsIsPlainDedup(t *testing.T) {
	entries := []Entry{
		{Key: []byte("a"), Value: []byte("a3"), Seq: 3},
		{Key: []byte("a"), Value: []byte("a1"), Seq: 1},
		{Key: []byte("b"), Seq: 2, Kind: KindDelete},
		{Key: []byte("c"), Value: []byte("c4"), Seq: 4},
	}
	got := retain(entries, nil, false)
	if len(got) != 3 || got[0].Seq != 3 || got[1].Kind != KindDelete || got[2].Seq != 4 {
		t.Fatalf("no-bounds retention should equal dedup, got %v", got)
	}
	got = retain(entries, nil, true)
	if len(got) != 2 || string(got[0].Key) != "a" || string(got[1].Key) != "c" {
		t.Fatalf("dropTombstones should elide b's tombstone, got %v", got)
	}
}

func TestRetainerKeepsSnapshotVersions(t *testing.T) {
	// Snapshot at seq 2 pins a@2; versions a@5 (newest, always kept) and a@2
	// (visible at the boundary) survive, a@1 (shadowed by a@2 below every
	// boundary) does not.
	entries := []Entry{
		{Key: []byte("a"), Value: []byte("a5"), Seq: 5},
		{Key: []byte("a"), Value: []byte("a2"), Seq: 2},
		{Key: []byte("a"), Value: []byte("a1"), Seq: 1},
	}
	got := retain(entries, []uint64{2, 5}, false)
	if len(got) != 2 || got[0].Seq != 5 || got[1].Seq != 2 {
		t.Fatalf("want [a@5 a@2], got %v", got)
	}
}

func TestRetainerKeepsUnpublishedVersions(t *testing.T) {
	// Versions above the max boundary (the watermark) are unpublished: the
	// in-order publish may stop on any of them, so all must survive.
	entries := []Entry{
		{Key: []byte("a"), Value: []byte("a9"), Seq: 9},
		{Key: []byte("a"), Value: []byte("a8"), Seq: 8},
		{Key: []byte("a"), Value: []byte("a3"), Seq: 3},
		{Key: []byte("a"), Value: []byte("a1"), Seq: 1},
	}
	got := retain(entries, []uint64{5}, false)
	// a@9, a@8 unpublished; a@3 visible at the watermark; a@1 shadowed.
	if len(got) != 3 || got[0].Seq != 9 || got[1].Seq != 8 || got[2].Seq != 3 {
		t.Fatalf("want [a@9 a@8 a@3], got %v", got)
	}
}

func TestRetainerTombstoneElision(t *testing.T) {
	// A retained tombstone is dropped only when it is the sole retained
	// version of its key; when an older version survives for a snapshot, the
	// tombstone must survive too or the key would resurrect.
	entries := []Entry{
		{Key: []byte("a"), Seq: 5, Kind: KindDelete},
		{Key: []byte("a"), Value: []byte("a2"), Seq: 2},
		{Key: []byte("b"), Seq: 6, Kind: KindDelete}, // sole version: elidable
	}
	// Snapshot at 3 pins a@2, so a's tombstone must survive with it; b's
	// tombstone is the sole retained version of its key and is elided.
	got := retain(entries, []uint64{3, 7}, true)
	if len(got) != 2 ||
		string(got[0].Key) != "a" || got[0].Kind != KindDelete ||
		string(got[1].Key) != "a" || got[1].Seq != 2 {
		t.Fatalf("want [a@5(del) a@2], got %v", got)
	}
}

func TestRetainerStartsNewKey(t *testing.T) {
	r := NewRetainer(nil, false)
	if !r.StartsNewKey([]byte("a")) {
		t.Fatal("empty retainer: every key starts a new group")
	}
	r.Next(Entry{Key: []byte("a"), Seq: 2})
	if r.StartsNewKey([]byte("a")) {
		t.Fatal("same key should not start a new group")
	}
	if !r.StartsNewKey([]byte("b")) {
		t.Fatal("different key should start a new group")
	}
}

func TestRetainIteratorSeekResetsGroups(t *testing.T) {
	var entries []Entry
	for i := 0; i < 8; i++ {
		entries = append(entries, Entry{Key: []byte(fmt.Sprintf("k%d", i)), Value: []byte("v"), Seq: uint64(10 + i)})
	}
	it := NewRetainIterator(NewSliceIterator(entries), []uint64{20}, false)
	got := collect(it)
	if len(got) != 8 {
		t.Fatalf("full walk: %d entries, want 8", len(got))
	}
	it.SeekGE([]byte("k4"))
	got = collect(it)
	if len(got) != 4 || string(got[0].Key) != "k4" {
		t.Fatalf("after SeekGE(k4): %v", got)
	}
}
