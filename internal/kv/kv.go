// Package kv defines the entry model shared by every tier of the LSM-tree:
// user keys, sequence numbers, tombstones, and the internal-key ordering that
// makes multi-version shadowing work across memtable, PM level-0 and SSD.
package kv

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Kind distinguishes live values from tombstones.
type Kind uint8

// Entry kinds.
const (
	KindSet Kind = iota
	KindDelete
)

// String returns "set" or "del".
func (k Kind) String() string {
	if k == KindDelete {
		return "del"
	}
	return "set"
}

// Entry is one versioned key-value record.
type Entry struct {
	Key   []byte
	Value []byte
	Seq   uint64
	Kind  Kind
}

// Size reports the approximate in-memory footprint of the entry, used for
// memtable and PM-table sizing.
func (e Entry) Size() int { return len(e.Key) + len(e.Value) + 9 }

// String formats the entry for debugging.
func (e Entry) String() string {
	return fmt.Sprintf("%q@%d:%s=%q", e.Key, e.Seq, e.Kind, e.Value)
}

// Compare orders entries by user key ascending, then by sequence number
// descending (newest version first), then tombstones before sets at equal
// sequence (cannot occur in practice but keeps the order total).
func Compare(a, b Entry) int {
	if c := bytes.Compare(a.Key, b.Key); c != 0 {
		return c
	}
	switch {
	case a.Seq > b.Seq:
		return -1
	case a.Seq < b.Seq:
		return 1
	}
	switch {
	case a.Kind == b.Kind:
		return 0
	case a.Kind == KindDelete:
		return -1
	default:
		return 1
	}
}

// MaxSeq is the largest usable sequence number.
const MaxSeq = uint64(1)<<56 - 1

// Trailer packs (seq, kind) into 8 bytes: seq in the upper 56 bits, kind in
// the low 8. Internal keys append the trailer inverted so that a plain
// bytes.Compare over encoded internal keys yields Compare's order.
func Trailer(seq uint64, kind Kind) uint64 { return seq<<8 | uint64(kind) }

// SplitTrailer unpacks a trailer.
func SplitTrailer(t uint64) (seq uint64, kind Kind) {
	return t >> 8, Kind(t & 0xff)
}

// AppendInternalKey encodes key followed by the bitwise-inverted trailer in
// big-endian. Encoded internal keys must be compared with
// CompareInternalKeys — a raw bytes.Compare is wrong when one user key is a
// prefix of another, because the comparison would run into trailer bytes.
func AppendInternalKey(dst []byte, key []byte, seq uint64, kind Kind) []byte {
	dst = append(dst, key...)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], ^Trailer(seq, kind))
	return append(dst, buf[:]...)
}

// CompareInternalKeys orders encoded internal keys consistently with Compare:
// user key ascending, then trailer bytes (inverted seq ⇒ seq descending).
func CompareInternalKeys(a, b []byte) int {
	ua, ta := a[:len(a)-8], a[len(a)-8:]
	ub, tb := b[:len(b)-8], b[len(b)-8:]
	if c := bytes.Compare(ua, ub); c != 0 {
		return c
	}
	return bytes.Compare(ta, tb)
}

// ParseInternalKey splits an encoded internal key back into its parts. It
// panics on keys shorter than the 8-byte trailer, which indicates corruption.
func ParseInternalKey(ik []byte) (key []byte, seq uint64, kind Kind) {
	if len(ik) < 8 {
		panic(fmt.Sprintf("kv: internal key too short: %d bytes", len(ik)))
	}
	n := len(ik) - 8
	t := ^binary.BigEndian.Uint64(ik[n:])
	seq, kind = SplitTrailer(t)
	return ik[:n], seq, kind
}

// Iterator walks entries in Compare order. Implementations are not safe for
// concurrent use.
type Iterator interface {
	// Valid reports whether the iterator is positioned at an entry.
	Valid() bool
	// Next advances to the next entry in order.
	Next()
	// Entry returns the current entry. The returned slices are only valid
	// until the next call to Next or Seek.
	Entry() Entry
	// SeekGE positions at the first entry with user key >= key (any version).
	SeekGE(key []byte)
	// SeekToFirst rewinds to the smallest entry.
	SeekToFirst()
}

// PosEOF is the PosIterator position of an exhausted iterator.
const PosEOF = ^uint64(0)

// PosIterator is an Iterator whose position can be captured as an opaque
// token and later restored in O(1) seeks (no key comparisons). Tokens are
// only meaningful for the same immutable underlying source: Pos taken from
// one iterator may be passed to SetPos on another iterator over the same
// table(s). Tokens over a given source are monotonically increasing in
// iteration order.
type PosIterator interface {
	Iterator
	// Pos returns the token of the current position, or PosEOF when the
	// iterator is exhausted.
	Pos() uint64
	// SetPos restores a position previously returned by Pos. Passing PosEOF
	// leaves the iterator exhausted.
	SetPos(pos uint64)
}

// SliceIterator iterates over an in-memory, already-sorted slice of entries.
type SliceIterator struct {
	entries []Entry
	i       int
}

// NewSliceIterator wraps entries, which must already be in Compare order.
func NewSliceIterator(entries []Entry) *SliceIterator {
	return &SliceIterator{entries: entries}
}

// Valid implements Iterator.
func (it *SliceIterator) Valid() bool { return it.i >= 0 && it.i < len(it.entries) }

// Next implements Iterator.
func (it *SliceIterator) Next() { it.i++ }

// Entry implements Iterator.
func (it *SliceIterator) Entry() Entry { return it.entries[it.i] }

// SeekToFirst implements Iterator.
func (it *SliceIterator) SeekToFirst() { it.i = 0 }

// SeekGE implements Iterator.
func (it *SliceIterator) SeekGE(key []byte) {
	lo, hi := 0, len(it.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(it.entries[mid].Key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	it.i = lo
}
