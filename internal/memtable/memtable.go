// Package memtable implements the DRAM tier of the LSM-tree: a skiplist
// ordered by internal key (user key ascending, sequence descending) with
// lock-free reads and mutex-serialized writes, plus size accounting that
// drives minor-compaction triggers.
package memtable

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"

	"pmblade/internal/kv"
)

const maxHeight = 12

type node struct {
	ik    []byte // encoded internal key (user key + inverted trailer)
	value []byte
	next  [maxHeight]atomic.Pointer[node]
	h     int
}

// Memtable is a sorted in-memory write buffer. Reads may run concurrently
// with one writer; writes are serialized internally.
type Memtable struct {
	head   *node
	mu     sync.Mutex
	rng    *rand.Rand
	size   atomic.Int64
	count  atomic.Int64
	height atomic.Int32
}

// New returns an empty memtable.
func New() *Memtable {
	m := &Memtable{
		head: &node{h: maxHeight},
		rng:  rand.New(rand.NewSource(1)),
	}
	m.height.Store(1)
	return m
}

// ApproximateSize reports bytes buffered (keys + values + per-entry
// overhead); the engine flushes when it exceeds the memtable budget.
func (m *Memtable) ApproximateSize() int64 { return m.size.Load() }

// Len reports the number of entries (versions, not unique keys).
func (m *Memtable) Len() int { return int(m.count.Load()) }

// Empty reports whether no entries have been added.
func (m *Memtable) Empty() bool { return m.count.Load() == 0 }

func (m *Memtable) randomHeight() int {
	h := 1
	for h < maxHeight && m.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// Add inserts an entry. Sequence numbers make every internal key unique, so
// duplicates cannot collide.
func (m *Memtable) Add(e kv.Entry) {
	ik := kv.AppendInternalKey(nil, e.Key, e.Seq, e.Kind)
	val := append([]byte(nil), e.Value...)

	m.mu.Lock()
	defer m.mu.Unlock()

	var prev [maxHeight]*node
	x := m.head
	for level := int(m.height.Load()) - 1; level >= 0; level-- {
		for {
			nxt := x.next[level].Load()
			if nxt == nil || kv.CompareInternalKeys(nxt.ik, ik) >= 0 {
				break
			}
			x = nxt
		}
		prev[level] = x
	}
	h := m.randomHeight()
	if h > int(m.height.Load()) {
		for level := int(m.height.Load()); level < h; level++ {
			prev[level] = m.head
		}
		m.height.Store(int32(h))
	}
	n := &node{ik: ik, value: val, h: h}
	for level := 0; level < h; level++ {
		n.next[level].Store(prev[level].next[level].Load())
		prev[level].next[level].Store(n)
	}
	m.size.Add(int64(len(ik) + len(val) + 48))
	m.count.Add(1)
}

// findGE returns the first node with internal key >= ik.
func (m *Memtable) findGE(ik []byte) *node {
	x := m.head
	for level := int(m.height.Load()) - 1; level >= 0; level-- {
		for {
			nxt := x.next[level].Load()
			if nxt == nil || kv.CompareInternalKeys(nxt.ik, ik) >= 0 {
				break
			}
			x = nxt
		}
	}
	return x.next[0].Load()
}

// Get returns the newest version of key visible at snapshot seq. ok reports
// whether any version exists; the returned entry may be a tombstone.
func (m *Memtable) Get(key []byte, seq uint64) (e kv.Entry, ok bool) {
	// Seek to (key, seq, Delete): versions newer than seq sort strictly
	// before this probe, and both a Delete and a Set at exactly seq sort at
	// or after it, so findGE lands on the newest version visible at seq.
	probe := kv.AppendInternalKey(nil, key, seq, kv.KindDelete)
	n := m.findGE(probe)
	if n == nil {
		return kv.Entry{}, false
	}
	ukey, s, kind := kv.ParseInternalKey(n.ik)
	if !bytes.Equal(ukey, key) {
		return kv.Entry{}, false
	}
	// A Set at seq sorts after (key, seq, Delete); accept any version <= seq.
	if s > seq {
		return kv.Entry{}, false
	}
	return kv.Entry{Key: ukey, Value: n.value, Seq: s, Kind: kind}, true
}

// Iterator walks the memtable in internal-key order. It is valid while the
// memtable is alive; concurrent Adds may or may not be observed.
type Iterator struct {
	m *Memtable
	n *node
}

// NewIterator returns an iterator positioned before the first entry; call
// SeekToFirst or SeekGE.
func (m *Memtable) NewIterator() *Iterator { return &Iterator{m: m} }

// Valid implements kv.Iterator.
func (it *Iterator) Valid() bool { return it.n != nil }

// Next implements kv.Iterator.
func (it *Iterator) Next() { it.n = it.n.next[0].Load() }

// SeekToFirst implements kv.Iterator.
func (it *Iterator) SeekToFirst() { it.n = it.m.head.next[0].Load() }

// SeekGE implements kv.Iterator.
func (it *Iterator) SeekGE(key []byte) {
	probe := kv.AppendInternalKey(nil, key, kv.MaxSeq, kv.KindDelete)
	it.n = it.m.findGE(probe)
}

// Entry implements kv.Iterator.
func (it *Iterator) Entry() kv.Entry {
	ukey, seq, kind := kv.ParseInternalKey(it.n.ik)
	return kv.Entry{Key: ukey, Value: it.n.value, Seq: seq, Kind: kind}
}
