package memtable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"pmblade/internal/kv"
)

func TestAddGetBasic(t *testing.T) {
	m := New()
	m.Add(kv.Entry{Key: []byte("k1"), Value: []byte("v1"), Seq: 1})
	m.Add(kv.Entry{Key: []byte("k2"), Value: []byte("v2"), Seq: 2})
	m.Add(kv.Entry{Key: []byte("k1"), Value: []byte("v1b"), Seq: 3})

	e, ok := m.Get([]byte("k1"), kv.MaxSeq)
	if !ok || string(e.Value) != "v1b" {
		t.Fatalf("Get(k1) = %v,%v want v1b", e, ok)
	}
	e, ok = m.Get([]byte("k1"), 2)
	if !ok || string(e.Value) != "v1" {
		t.Fatalf("Get(k1@2) = %v,%v want v1", e, ok)
	}
	if _, ok := m.Get([]byte("k3"), kv.MaxSeq); ok {
		t.Fatal("Get(k3) should miss")
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d want 3", m.Len())
	}
}

func TestGetTombstoneIsVisible(t *testing.T) {
	m := New()
	m.Add(kv.Entry{Key: []byte("k"), Value: []byte("v"), Seq: 1})
	m.Add(kv.Entry{Key: []byte("k"), Seq: 2, Kind: kv.KindDelete})
	e, ok := m.Get([]byte("k"), kv.MaxSeq)
	if !ok || e.Kind != kv.KindDelete {
		t.Fatalf("Get should surface the tombstone, got %v,%v", e, ok)
	}
}

func TestPrefixKeysDoNotCollide(t *testing.T) {
	// "k" is a prefix of "k1": raw byte-concatenated internal keys would
	// interleave wrongly without a boundary-aware comparison.
	m := New()
	m.Add(kv.Entry{Key: []byte("k"), Value: []byte("short"), Seq: 5})
	m.Add(kv.Entry{Key: []byte("k1"), Value: []byte("long"), Seq: 1})
	e, ok := m.Get([]byte("k"), kv.MaxSeq)
	if !ok || string(e.Value) != "short" {
		t.Fatalf("Get(k) = %v,%v", e, ok)
	}
	e, ok = m.Get([]byte("k1"), kv.MaxSeq)
	if !ok || string(e.Value) != "long" {
		t.Fatalf("Get(k1) = %v,%v", e, ok)
	}
}

func TestIteratorOrder(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(7))
	var all []kv.Entry
	for i := 0; i < 500; i++ {
		e := kv.Entry{
			Key:   []byte(fmt.Sprintf("key-%03d", rng.Intn(200))),
			Value: []byte(fmt.Sprint(i)),
			Seq:   uint64(i + 1),
		}
		m.Add(e)
		all = append(all, e)
	}
	sort.Slice(all, func(i, j int) bool { return kv.Compare(all[i], all[j]) < 0 })
	it := m.NewIterator()
	it.SeekToFirst()
	for i := range all {
		if !it.Valid() {
			t.Fatalf("exhausted at %d", i)
		}
		got := it.Entry()
		if !bytes.Equal(got.Key, all[i].Key) || got.Seq != all[i].Seq {
			t.Fatalf("pos %d: got %v want %v", i, got, all[i])
		}
		it.Next()
	}
	if it.Valid() {
		t.Fatal("iterator should be exhausted")
	}
}

func TestSeekGE(t *testing.T) {
	m := New()
	m.Add(kv.Entry{Key: []byte("b"), Seq: 1})
	m.Add(kv.Entry{Key: []byte("d"), Seq: 2})
	it := m.NewIterator()
	it.SeekGE([]byte("c"))
	if !it.Valid() || string(it.Entry().Key) != "d" {
		t.Fatalf("SeekGE(c) should land on d")
	}
	it.SeekGE([]byte("e"))
	if it.Valid() {
		t.Fatal("SeekGE(e) should exhaust")
	}
}

func TestConcurrentReadsDuringWrites(t *testing.T) {
	m := New()
	const n = 2000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			m.Add(kv.Entry{
				Key:   []byte(fmt.Sprintf("key-%05d", i)),
				Value: []byte("v"),
				Seq:   uint64(i + 1),
			})
		}
	}()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-done:
					return
				default:
				}
				k := []byte(fmt.Sprintf("key-%05d", rng.Intn(n)))
				if e, ok := m.Get(k, kv.MaxSeq); ok && string(e.Value) != "v" {
					t.Errorf("corrupt read %v", e)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestQuickModelEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New()
		model := map[string]kv.Entry{}
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("k%02d", rng.Intn(30))
			kind := kv.KindSet
			if rng.Intn(4) == 0 {
				kind = kv.KindDelete
			}
			e := kv.Entry{Key: []byte(k), Value: []byte(fmt.Sprint(i)), Seq: uint64(i + 1), Kind: kind}
			m.Add(e)
			model[k] = e
		}
		for k, want := range model {
			got, ok := m.Get([]byte(k), kv.MaxSeq)
			if !ok || got.Seq != want.Seq || got.Kind != want.Kind {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestApproximateSizeGrows(t *testing.T) {
	m := New()
	if m.ApproximateSize() != 0 {
		t.Fatal("fresh memtable should have size 0")
	}
	m.Add(kv.Entry{Key: []byte("key"), Value: make([]byte, 1000), Seq: 1})
	if m.ApproximateSize() < 1000 {
		t.Fatalf("size %d should account for the value", m.ApproximateSize())
	}
}
