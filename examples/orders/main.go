// Orders: model the online-retail database layer the paper's Blade system
// serves — record tables with secondary indexes, an order lifecycle with
// repeated status updates, and index queries (scan index → point read rows).
//
//	go run ./examples/orders
package main

import (
	"fmt"
	"log"

	"pmblade"
)

// Order statuses an order moves through — each transition updates the row
// and replaces its status-index entry, generating the update-heavy pattern
// PM-Blade's internal compaction absorbs.
var statuses = []string{"CREATED", "PAID", "PACKING", "SHIPPING", "DELIVERED"}

func main() {
	db, err := pmblade.Open(pmblade.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	orders := db.Table(1)
	const (
		statusIndex = 1
		cityIndex   = 2
	)

	// Place 200 orders across 3 cities.
	cities := []string{"beijing", "shanghai", "shenzhen"}
	for i := 0; i < 200; i++ {
		pk := []byte(fmt.Sprintf("ord-%06d", i))
		city := cities[i%len(cities)]
		row := fmt.Sprintf(`{"id":%d,"city":%q,"status":"CREATED","amount":%d}`, i, city, 100+i)
		if err := orders.InsertRow(pk, []byte(row)); err != nil {
			log.Fatal(err)
		}
		if err := orders.AddIndexEntry(statusIndex, []byte("CREATED"), pk); err != nil {
			log.Fatal(err)
		}
		if err := orders.AddIndexEntry(cityIndex, []byte(city), pk); err != nil {
			log.Fatal(err)
		}
	}

	// Advance the first 100 orders through their lifecycle: update the row
	// and move the status-index entry.
	for i := 0; i < 100; i++ {
		pk := []byte(fmt.Sprintf("ord-%06d", i))
		for s := 1; s < len(statuses); s++ {
			row := fmt.Sprintf(`{"id":%d,"status":%q}`, i, statuses[s])
			if err := orders.InsertRow(pk, []byte(row)); err != nil {
				log.Fatal(err)
			}
			if err := orders.RemoveIndexEntry(statusIndex, []byte(statuses[s-1]), pk); err != nil {
				log.Fatal(err)
			}
			if err := orders.AddIndexEntry(statusIndex, []byte(statuses[s]), pk); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Index query: which orders are DELIVERED? (scan index, then point read)
	pks, err := orders.LookupIndex(statusIndex, []byte("DELIVERED"), 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d delivered orders (showing %d):\n", 100, len(pks))
	for _, pk := range pks {
		row, ok, err := orders.GetRow(pk)
		if err != nil || !ok {
			log.Fatalf("row for %s missing: %v", pk, err)
		}
		fmt.Printf("  %s -> %s\n", pk, row)
	}

	// Index query on city.
	pks, err = orders.LookupIndex(cityIndex, []byte("shanghai"), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first %d shanghai orders: %q\n", len(pks), pks)

	// Push everything out of DRAM so the tiering machinery is visible.
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	// The update-heavy lifecycle left redundancy in level-0; the engine's
	// cost-based internal compaction dealt with it. Inspect the counters.
	m := db.Metrics()
	fmt.Printf("flushes=%d internal_compactions=%d major_compactions=%d\n",
		m.FlushCount.Load(), m.InternalCount.Load(), m.MajorCount.Load())
	wa := db.WriteAmp()
	fmt.Printf("write amplification factor: %.2f (PM %dKB, SSD %dKB)\n",
		wa.Factor(), wa.PMBytes>>10, (wa.SSDBytes-wa.SSDWALBytes)>>10)
}
