// Quickstart: open a PM-Blade database, write, read, scan, and inspect the
// engine's tiering metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pmblade"
)

func main() {
	// DefaultOptions gives the full PM-Blade stack: prefix-compressed PM
	// tables on a simulated persistent-memory level-0, internal compaction
	// driven by the cost models, and coroutine-scheduled major compaction.
	db, err := pmblade.Open(pmblade.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Basic writes.
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("user-%04d", i)
		if err := db.Put([]byte(key), []byte(fmt.Sprintf("profile-%d", i))); err != nil {
			log.Fatal(err)
		}
	}

	// Point read.
	v, ok, err := db.Get([]byte("user-0042"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Get(user-0042) = %q (found=%v)\n", v, ok)

	// Delete hides the key everywhere.
	if err := db.Delete([]byte("user-0042")); err != nil {
		log.Fatal(err)
	}
	if _, ok, err := db.Get([]byte("user-0042")); err != nil {
		log.Fatal(err)
	} else if !ok {
		fmt.Println("user-0042 deleted")
	}

	// Range scan.
	res, err := db.Scan([]byte("user-0100"), []byte("user-0105"), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scan user-0100..user-0105:")
	for _, kv := range res {
		fmt.Printf("  %s = %s\n", kv.Key, kv.Value)
	}

	// Batches apply atomically with respect to the WAL.
	var b pmblade.Batch
	b.Put([]byte("order-1"), []byte("pending"))
	b.Put([]byte("order-2"), []byte("pending"))
	b.Delete([]byte("user-0001"))
	if err := db.Apply(&b); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("applied a %d-op batch\n", 3)

	// Force data down the tiers and watch where reads are served from.
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	if _, _, err := db.Get([]byte("user-0500")); err != nil { // now served from the PM level-0
		log.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		log.Fatal(err)
	}
	if _, _, err := db.Get([]byte("user-0500")); err != nil { // now served from SSD
		log.Fatal(err)
	}

	m := db.Metrics()
	fmt.Printf("reads by tier: memtable=%d pm=%d ssd=%d\n",
		m.ReadsBy(pmblade.TierMemtable), m.ReadsBy(pmblade.TierPM), m.ReadsBy(pmblade.TierSSD))
	wa := db.WriteAmp()
	fmt.Printf("write amplification: user=%dB total=%dB factor=%.2f\n",
		wa.UserBytes, wa.Total(), wa.Factor())
}
