// Recovery: demonstrate crash consistency. Part 1 writes data, checkpoints
// (flush + WAL rotation + manifest), writes a little more (WAL-only), then
// "crashes" by discarding the engine and recovers from the surviving
// devices: the checkpointed tables reopen in place and the WAL tail replays.
// Part 2 is harsher: the fault layer cuts the power in the middle of a
// checkpoint, recovery starts from a crash image where unsynced bytes are
// gone — and still no acknowledged write is lost.
//
//	go run ./examples/recovery
package main

import (
	"errors"
	"fmt"
	"log"

	"pmblade"
	"pmblade/internal/device"
	"pmblade/internal/engine"
	"pmblade/internal/fault"
	"pmblade/internal/ssd"
)

func main() {
	db, err := pmblade.Open(pmblade.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	eng := db.Engine()

	// Durable phase: 5000 keys, then checkpoint.
	for i := 0; i < 5000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := eng.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpointed 5000 keys (flushed, WAL rotated, manifest saved)")

	// Tail phase: these live only in the fresh WAL.
	for i := 5000; i < 5100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	// A restart needs a manifest that references the current WAL.
	manifest, err := eng.SaveManifest()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote 100 more keys (WAL only) and saved the manifest")

	// "Crash": the process state is gone; only the devices survive.
	pm, sd := eng.PMDevice(), eng.SSDDevice()
	db.Close()

	re, err := engine.Recover(pmblade.DefaultOptions().EngineConfig(), pm, sd, manifest)
	if err != nil {
		log.Fatal(err)
	}
	defer re.Close()

	// Everything — checkpointed tables and WAL tail — is back.
	missing := 0
	for i := 0; i < 5100; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		v, ok, err := re.Get(k)
		if err != nil {
			log.Fatal(err)
		}
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			missing++
		}
	}
	fmt.Printf("after recovery: %d/%d keys intact (%d missing)\n", 5100-missing, 5100, missing)
	if missing == 0 {
		fmt.Println("crash recovery successful: PM tables reopened in place, WAL tail replayed")
	}
	re.Close()

	powerCutDemo()
}

// powerCutDemo loses power in the middle of a checkpoint and recovers from
// the crash image.
func powerCutDemo() {
	fmt.Println()
	in := fault.New(1) // everything downstream is reproducible from this seed
	cfg := pmblade.DefaultOptions().EngineConfig()
	cfg.FaultInjector = in
	eng, err := engine.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Acked writes: each Put returns only after its WAL record is synced.
	acked := 0
	for i := 0; i < 3000; i++ {
		if err := eng.Put([]byte(fmt.Sprintf("pc-%05d", i)), []byte("v")); err != nil {
			log.Fatal(err)
		}
		acked++
	}

	// Cut the power at the checkpoint's very next manifest write.
	in.ArmPowerCutAt(fault.SSDAppend, device.CauseManifest, 1)
	if _, err := eng.Checkpoint(); !errors.Is(err, fault.ErrPowerCut) {
		log.Fatalf("expected the checkpoint to die at the power cut, got %v", err)
	}
	fmt.Printf("power cut mid-checkpoint after %d acked writes\n", acked)

	// What a restart finds: the synced prefix of every file survives; the
	// unsynced tail of each is kept fully, torn, or dropped per the seed.
	pmImg := eng.PMDevice().CrashImage(in.KeepBytes)
	sdImg := eng.SSDDevice().CrashImage(
		func(_ ssd.FileID, durable, size int64) int64 { return in.KeepBytes(durable, size) })

	re, err := engine.RecoverCurrent(pmblade.DefaultOptions().EngineConfig(), pmImg, sdImg)
	if err != nil {
		log.Fatal(err)
	}
	defer re.Close()
	lost := 0
	for i := 0; i < acked; i++ {
		_, ok, err := re.Get([]byte(fmt.Sprintf("pc-%05d", i)))
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			lost++
		}
	}
	fmt.Printf("after power-cut recovery: %d/%d acked writes intact (%d lost)\n",
		acked-lost, acked, lost)
	if lost == 0 {
		fmt.Println("power-cut recovery successful: manifest chain + WAL replay covered every ack")
	}
}
