// Recovery: demonstrate crash consistency. Write data, checkpoint (flush +
// WAL rotation + manifest), write a little more (WAL-only), then "crash" by
// discarding the engine and recover from the surviving devices: the
// checkpointed tables reopen in place and the WAL tail replays.
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"log"

	"pmblade"
	"pmblade/internal/engine"
)

func main() {
	db, err := pmblade.Open(pmblade.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	eng := db.Engine()

	// Durable phase: 5000 keys, then checkpoint.
	for i := 0; i < 5000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := eng.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpointed 5000 keys (flushed, WAL rotated, manifest saved)")

	// Tail phase: these live only in the fresh WAL.
	for i := 5000; i < 5100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	// A restart needs a manifest that references the current WAL.
	manifest, err := eng.SaveManifest()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote 100 more keys (WAL only) and saved the manifest")

	// "Crash": the process state is gone; only the devices survive.
	pm, sd := eng.PMDevice(), eng.SSDDevice()
	db.Close()

	re, err := engine.Recover(pmblade.DefaultOptions().EngineConfig(), pm, sd, manifest)
	if err != nil {
		log.Fatal(err)
	}
	defer re.Close()

	// Everything — checkpointed tables and WAL tail — is back.
	missing := 0
	for i := 0; i < 5100; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		v, ok, err := re.Get(k)
		if err != nil {
			log.Fatal(err)
		}
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			missing++
		}
	}
	fmt.Printf("after recovery: %d/%d keys intact (%d missing)\n", 5100-missing, 5100, missing)
	if missing == 0 {
		fmt.Println("crash recovery successful: PM tables reopened in place, WAL tail replayed")
	}
}
