// Hotcold: demonstrate PM-Blade's warm-data retention. A skewed workload
// reads a hot subset of keys; the cost-based compaction strategy (Eq. 3 of
// the paper) keeps the hot partitions resident in persistent memory when
// major compaction must evict, so most reads keep hitting PM instead of SSD.
//
//	go run ./examples/hotcold
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pmblade"
)

func main() {
	opts := pmblade.DefaultOptions()
	// A small PM budget forces evictions; 8 range partitions give the
	// knapsack of Eq. 3 real choices.
	opts.PMCapacityBytes = 8 << 20
	opts.MemtableBytes = 256 << 10
	for i := 1; i < 8; i++ {
		opts.PartitionBoundaries = append(opts.PartitionBoundaries,
			[]byte(fmt.Sprintf("key-%05d", i*2500)))
	}
	db, err := pmblade.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const keyspace = 20000
	rng := rand.New(rand.NewSource(1))
	val := make([]byte, 512)
	rng.Read(val)

	// Mixed workload: writes across the whole keyspace, reads concentrated
	// on the first partition (keys 0..2499 are "hot").
	for i := 0; i < 60000; i++ {
		if i%2 == 0 {
			k := fmt.Sprintf("key-%05d", rng.Intn(keyspace))
			if err := db.Put([]byte(k), val); err != nil {
				log.Fatal(err)
			}
			continue
		}
		var k string
		if rng.Intn(10) < 8 { // 80% of reads hit the hot 12.5% of keys
			k = fmt.Sprintf("key-%05d", rng.Intn(2500))
		} else {
			k = fmt.Sprintf("key-%05d", rng.Intn(keyspace))
		}
		if _, _, err := db.Get([]byte(k)); err != nil {
			log.Fatal(err)
		}
	}

	m := db.Metrics()
	fmt.Printf("reads served by: memtable=%d PM=%d SSD=%d\n",
		m.ReadsBy(pmblade.TierMemtable), m.ReadsBy(pmblade.TierPM), m.ReadsBy(pmblade.TierSSD))
	fmt.Printf("PM hit ratio (PM vs SSD): %.0f%%\n", 100*m.PMHitRatio())
	fmt.Printf("compactions: internal=%d major=%d\n",
		m.InternalCount.Load(), m.MajorCount.Load())
	fmt.Println()
	fmt.Println("The cost model kept the hot partition's data in PM: despite PM")
	fmt.Println("holding only a fraction of the dataset, the skewed reads rarely")
	fmt.Println("touch the SSD. Re-run with opts.PMCapacityBytes doubled to watch")
	fmt.Println("the hit ratio rise further.")
}
