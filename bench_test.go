// Benchmarks regenerating every table and figure of the paper's evaluation
// (one Benchmark per experiment — run with `go test -bench=.`), plus
// micro-benchmarks of the core data structures.
//
// Experiment benchmarks run each experiment once per b.N iteration at a
// small scale and print its paper-style table on the first iteration; the
// reported ns/op is the full experiment wall time. For the full-size runs
// recorded in EXPERIMENTS.md, use cmd/pmblade-repro.
package pmblade

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"pmblade/internal/clock"
	"pmblade/internal/experiments"
	"pmblade/internal/pmem"
	"pmblade/internal/ssd"
)

// benchScale keeps experiment benchmarks fast enough for -bench=. sweeps.
var benchScale = experiments.Scale{Factor: 0.1}

// runExperiment executes one registered experiment; output is printed only
// on the first iteration to keep bench logs readable.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	clock.Calibrate()
	for i := 0; i < b.N; i++ {
		var w io.Writer = io.Discard
		if i == 0 && testing.Verbose() {
			w = benchWriter{b}
		}
		if _, err := experiments.Run(id, benchScale, w); err != nil {
			b.Fatal(err)
		}
	}
}

type benchWriter struct{ b *testing.B }

func (w benchWriter) Write(p []byte) (int, error) {
	w.b.Log(string(p))
	return len(p), nil
}

// --- One benchmark per paper table / figure -------------------------------

func BenchmarkTable1QueryLatency(b *testing.B)        { runExperiment(b, "table1") }
func BenchmarkFig2aFlushBreakdown(b *testing.B)       { runExperiment(b, "fig2a") }
func BenchmarkTable3ThreadCompaction(b *testing.B)    { runExperiment(b, "table3") }
func BenchmarkFig6aMinorCompaction(b *testing.B)      { runExperiment(b, "fig6a") }
func BenchmarkFig6bStructureReadLatency(b *testing.B) { runExperiment(b, "fig6b") }
func BenchmarkTable4SpaceReleased(b *testing.B)       { runExperiment(b, "table4") }
func BenchmarkTable5CompactionDuration(b *testing.B)  { runExperiment(b, "table5") }
func BenchmarkFig7aReadAmplification(b *testing.B)    { runExperiment(b, "fig7a") }
func BenchmarkFig7bReadDuringCompaction(b *testing.B) { runExperiment(b, "fig7b") }
func BenchmarkFig8aWriteAmplification(b *testing.B)   { runExperiment(b, "fig8a") }
func BenchmarkFig8bPMHitRatio(b *testing.B)           { runExperiment(b, "fig8b") }
func BenchmarkFig9CoroutineCompaction(b *testing.B)   { runExperiment(b, "fig9") }
func BenchmarkFig10Ablation(b *testing.B)             { runExperiment(b, "fig10") }
func BenchmarkFig11SystemsRetail(b *testing.B)        { runExperiment(b, "fig11") }
func BenchmarkFig12YCSB(b *testing.B)                 { runExperiment(b, "fig12") }

// --- Core-structure micro-benchmarks ---------------------------------------

func benchDB(b *testing.B) *DB {
	b.Helper()
	db, err := Open(FastOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

func BenchmarkEnginePut(b *testing.B) {
	db := benchDB(b)
	val := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%012d", i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

// parallelBenchDB builds a write-heavy multi-writer configuration: WAL on a
// realistic NVMe profile (so commit cost is visible and group commit has
// something to amortize) and four range partitions over the random key space
// the workload draws from.
func parallelBenchDB(b *testing.B) *DB {
	b.Helper()
	cfg := FastOptions().resolve()
	cfg.DisableWAL = false
	cfg.SSDProfile = ssd.NVMeProfile
	cfg.MemtableBytes = 1 << 20
	cfg.PartitionBoundaries = [][]byte{
		[]byte(fmt.Sprintf("key-%012d", int64(100_000_000_000))),
		[]byte(fmt.Sprintf("key-%012d", int64(200_000_000_000))),
		[]byte(fmt.Sprintf("key-%012d", int64(300_000_000_000))),
	}
	db, err := OpenEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

// benchWriters fixes the number of concurrent writer goroutines.
// RunParallel defaults to GOMAXPROCS workers, which degenerates to a serial
// loop on small machines; commit concurrency is what these benchmarks
// measure, so pin it rather than inherit the core count.
const benchWriters = 16

func BenchmarkEnginePutParallel(b *testing.B) {
	db := parallelBenchDB(b)
	var seed atomic.Int64
	b.SetParallelism((benchWriters + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		val := make([]byte, 256)
		for pb.Next() {
			k := []byte(fmt.Sprintf("key-%012d", rng.Int63n(400_000_000_000)))
			if err := db.Put(k, val); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkEngineBatchParallel(b *testing.B) {
	db := parallelBenchDB(b)
	var seed atomic.Int64
	b.SetParallelism((benchWriters + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		val := make([]byte, 256)
		var batch Batch
		for pb.Next() {
			batch.Reset()
			for j := 0; j < 10; j++ {
				batch.Put([]byte(fmt.Sprintf("key-%012d", rng.Int63n(400_000_000_000))), val)
			}
			if err := db.Apply(&batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkEngineGetMemtable(b *testing.B) {
	db := benchDB(b)
	val := make([]byte, 256)
	const n = 10000
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("key-%06d", i)), val)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.Get([]byte(fmt.Sprintf("key-%06d", rng.Intn(n)))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineGetPMLevel0(b *testing.B) {
	db := benchDB(b)
	val := make([]byte, 256)
	const n = 10000
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("key-%06d", i)), val)
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.Get([]byte(fmt.Sprintf("key-%06d", rng.Intn(n)))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineGetSSD(b *testing.B) {
	db := benchDB(b)
	val := make([]byte, 256)
	const n = 10000
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("key-%06d", i)), val)
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.Get([]byte(fmt.Sprintf("key-%06d", rng.Intn(n)))); err != nil {
			b.Fatal(err)
		}
	}
}

// scrubOnDB mirrors benchDB with the background scrubber enabled:
// back-to-back passes (1ms interval) at the default 8 MiB/s rate limit, the
// worst realistic steady-state interference a read benchmark can see.
func scrubOnDB(b *testing.B) *DB {
	b.Helper()
	cfg := FastOptions().resolve()
	cfg.ScrubInterval = time.Millisecond
	db, err := OpenEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

// BenchmarkEngineGetSSDScrubOn is BenchmarkEngineGetSSD with the background
// scrubber running throughout; the pair bounds the scrub's read-path tax
// (<5% is the acceptance threshold, see BENCH_read.json).
func BenchmarkEngineGetSSDScrubOn(b *testing.B) {
	db := scrubOnDB(b)
	val := make([]byte, 256)
	const n = 10000
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("key-%06d", i)), val)
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.Get([]byte(fmt.Sprintf("key-%06d", rng.Intn(n)))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineScan100ScrubOn pairs with BenchmarkEngineScan100 the same
// way.
func BenchmarkEngineScan100ScrubOn(b *testing.B) {
	db := scrubOnDB(b)
	val := make([]byte, 256)
	const n = 20000
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("key-%06d", i)), val)
	}
	db.Flush()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Intn(n - 200)
		if _, err := db.Scan([]byte(fmt.Sprintf("key-%06d", lo)), nil, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// ssdResidentDB builds a store whose working set lives on SSD (flushed and
// major-compacted), the tier where cache sharding and read coalescing matter.
func ssdResidentDB(b *testing.B, n int) *DB {
	b.Helper()
	db := benchDB(b)
	val := make([]byte, 256)
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("key-%06d", i)), val)
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkEngineGetParallel measures point-read scaling: concurrent random
// Gets against SSD-resident data, where the sharded block cache is the shared
// structure under contention.
func BenchmarkEngineGetParallel(b *testing.B) {
	const n = 10000
	db := ssdResidentDB(b, n)
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			if _, _, err := db.Get([]byte(fmt.Sprintf("key-%06d", rng.Intn(n)))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineMultiGet measures one 16-key batch per op against
// SSD-resident data; sorted-ish batches let block-read coalescing engage.
func BenchmarkEngineMultiGet(b *testing.B) {
	const n = 10000
	const batch = 16
	db := ssdResidentDB(b, n)
	rng := rand.New(rand.NewSource(1))
	keys := make([][]byte, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := rng.Intn(n - batch*8)
		for j := 0; j < batch; j++ {
			keys[j] = []byte(fmt.Sprintf("key-%06d", base+j*rng.Intn(8)))
		}
		res, err := db.MultiGet(keys)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != batch {
			b.Fatal("short result")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/key")
}

// BenchmarkEngineScan10 measures short range scans against SSD-resident data:
// the regime where per-scan setup (seek, view anchor search or heap build)
// dominates over per-entry cost.
func BenchmarkEngineScan10(b *testing.B) {
	const n = 20000
	db := ssdResidentDB(b, n)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Intn(n - 20)
		if _, err := db.Scan([]byte(fmt.Sprintf("key-%06d", lo)), nil, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineIteratorSeekNext opens an iterator at a random key and
// streams 100 entries — the pull-based counterpart of Scan100, exercising the
// partition-hop and prefetch machinery.
func BenchmarkEngineIteratorSeekNext(b *testing.B) {
	const n = 20000
	db := ssdResidentDB(b, n)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Intn(n - 200)
		it, err := db.NewIterator([]byte(fmt.Sprintf("key-%06d", lo)), nil)
		if err != nil {
			b.Fatal(err)
		}
		got := 0
		for ; it.Valid() && got < 100; it.Next() {
			got++
		}
		if err := it.Err(); err != nil {
			b.Fatal(err)
		}
		it.Close()
		if got != 100 {
			b.Fatalf("iterator yielded %d entries", got)
		}
	}
}

func BenchmarkEngineScan100(b *testing.B) {
	db := benchDB(b)
	val := make([]byte, 256)
	const n = 20000
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("key-%06d", i)), val)
	}
	db.Flush()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Intn(n - 200)
		if _, err := db.Scan([]byte(fmt.Sprintf("key-%06d", lo)), nil, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// benchScan100 runs 100-entry range scans against SSD-resident data with the
// given block cache size; cacheBytes 0 disables the cache entirely so every
// block comes off the device (the cold case).
func benchScan100(b *testing.B, cacheBytes int64) {
	cfg := FastOptions().resolve()
	cfg.BlockCacheBytes = cacheBytes
	db, err := OpenEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	val := make([]byte, 256)
	const n = 20000
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("key-%06d", i)), val)
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Intn(n - 200)
		if _, err := db.Scan([]byte(fmt.Sprintf("key-%06d", lo)), nil, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineScan100SSDCold scans with no block cache: readahead is the
// only mitigation for device latency.
func BenchmarkEngineScan100SSDCold(b *testing.B) { benchScan100(b, 0) }

// BenchmarkEngineScan100SSDHot scans with a cache large enough to hold the
// working set, so steady state serves from the sharded cache.
func BenchmarkEngineScan100SSDHot(b *testing.B) { benchScan100(b, 64<<20) }

// Ablation bench: group size 8 vs 16 in the prefix PM table (a design knob
// DESIGN.md calls out; the paper uses "eight or sixteen").
func BenchmarkAblationGroupSize(b *testing.B) {
	for _, gs := range []int{8, 16} {
		gs := gs
		b.Run(fmt.Sprintf("group%d", gs), func(b *testing.B) {
			cfg := FastOptions().resolve()
			cfg.GroupSize = gs
			db, err := OpenEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			val := make([]byte, 256)
			const n = 10000
			for i := 0; i < n; i++ {
				db.Put([]byte(fmt.Sprintf("key-%06d", i)), val)
			}
			db.Flush()
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.Get([]byte(fmt.Sprintf("key-%06d", rng.Intn(n))))
			}
		})
	}
}

// BenchmarkAblationMemoryDevice compares the level-0 memory tiers the paper
// discusses: Optane persistent memory vs CXL expanded memory (the conclusion's
// future-work direction), on a 50/50 point workload.
func BenchmarkAblationMemoryDevice(b *testing.B) {
	profiles := map[string]pmem.Profile{
		"optane": pmem.OptaneProfile,
		"cxl":    pmem.CXLProfile,
	}
	for name, prof := range profiles {
		name, prof := name, prof
		b.Run(name, func(b *testing.B) {
			cfg := FastOptions().resolve()
			cfg.PMProfile = prof
			db, err := OpenEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			val := make([]byte, 256)
			const n = 8000
			for i := 0; i < n; i++ {
				db.Put([]byte(fmt.Sprintf("key-%06d", i)), val)
			}
			db.Flush()
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rng.Intn(2) == 0 {
					db.Put([]byte(fmt.Sprintf("key-%06d", rng.Intn(n))), val)
				} else {
					db.Get([]byte(fmt.Sprintf("key-%06d", rng.Intn(n))))
				}
			}
		})
	}
}
