module pmblade

go 1.22
