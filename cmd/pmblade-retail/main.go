// Command pmblade-retail drives the synthetic Meituan-style online-retail
// workload (Section VI-D of the paper) against PM-Blade: order inserts with
// secondary indexes, status-update streams, and index queries with temporal
// locality.
//
// Example:
//
//	pmblade-retail -preload 5000 -actions 20000 -partitions 4
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"pmblade"
	"pmblade/internal/clock"
	"pmblade/internal/experiments"
	"pmblade/internal/retail"
)

func main() {
	preload := flag.Int("preload", 3000, "orders to insert before measuring")
	actions := flag.Int("actions", 10000, "measured client actions")
	partitions := flag.Int("partitions", 4, "range partitions")
	pmMB := flag.Int64("pm", 64, "PM capacity in MiB")
	system := flag.String("system", "pmblade", "pmblade | pmblade-pm | pmblade-ssd | rocksdb")
	flag.Parse()
	clock.Calibrate()

	sysName := map[string]string{
		"pmblade":     experiments.SysPMBlade,
		"pmblade-pm":  experiments.SysPMBladePM,
		"pmblade-ssd": experiments.SysPMBladeSSD,
		"rocksdb":     experiments.SysRocksDB,
	}[*system]
	if sysName == "" {
		log.Fatalf("unknown system %q", *system)
	}
	cfg := experiments.SystemConfig(sysName, experiments.EngineParams{
		PMCapacity:    *pmMB << 20,
		MemtableBytes: 1 << 20,
		Realistic:     true,
	})
	if sysName != experiments.SysRocksDB {
		cfg.PartitionBoundaries = retail.PartitionBoundaries(*partitions)
	}
	db, err := pmblade.OpenEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	gen := retail.New(retail.Config{OrderBytes: 4096, ReadFraction: 0.5, Seed: 42})
	do := func(a retail.Action) {
		for _, m := range a.Mutations {
			if m.Delete {
				if err := db.Delete(m.Key); err != nil {
					log.Fatal(err)
				}
			} else if err := db.Put(m.Key, m.Value); err != nil {
				log.Fatal(err)
			}
		}
		for _, q := range a.Queries {
			if q.PointKey != nil {
				if _, _, err := db.Get(q.PointKey); err != nil {
					log.Fatal(err)
				}
				continue
			}
			if _, err := db.Scan(q.ScanStart, q.ScanEnd, q.ScanLimit); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Printf("preloading %d orders...\n", *preload)
	for int(gen.Orders()) < *preload {
		if a := gen.Next(); a.Kind == retail.ActInsertOrder {
			do(a)
		}
	}
	db.Metrics().ResetLatencies()

	fmt.Printf("running %d actions...\n", *actions)
	start := time.Now()
	counts := map[retail.ActionKind]int{}
	for i := 0; i < *actions; i++ {
		a := gen.Next()
		counts[a.Kind]++
		do(a)
	}
	wall := time.Since(start)

	m := db.Metrics()
	wa := db.WriteAmp()
	fmt.Printf("\n%s on retail workload: %.0f actions/s over %v\n",
		*system, float64(*actions)/wall.Seconds(), wall.Round(time.Millisecond))
	fmt.Printf("  mix: %d inserts, %d status updates, %d index queries, %d point reads\n",
		counts[retail.ActInsertOrder], counts[retail.ActUpdateStatus],
		counts[retail.ActIndexQuery], counts[retail.ActPointRead])
	fmt.Printf("  read  %v\n  write %v\n  scan  %v\n", m.ReadLatency, m.WriteLatency, m.ScanLatency)
	fmt.Printf("  compactions: flush=%d internal=%d major=%d\n",
		m.FlushCount.Load(), m.InternalCount.Load(), m.MajorCount.Load())
	fmt.Printf("  write amplification %.2f (PM %dMB, SSD %dMB) | PM hit %.0f%%\n",
		wa.Factor(), wa.PMBytes>>20, (wa.SSDBytes-wa.SSDWALBytes)>>20, 100*m.PMHitRatio())
}
