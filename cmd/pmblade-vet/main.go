// pmblade-vet runs the engine's invariant analyzers (aliasescape,
// crcbeforeuse, faultcover, guardedby, lockorder, nodrop, nondeterminism,
// persistorder) over the module. It works two ways:
//
// Standalone, from anywhere inside the module:
//
//	pmblade-vet ./...                 # whole module (the default)
//	pmblade-vet ./internal/engine     # specific package directories
//	pmblade-vet -baseline vet-baseline.json -json findings.json ./...
//
// As a go vet tool, which runs it with go's own build graph and caching:
//
//	go vet -vettool=$(which pmblade-vet) ./...
//
// Standalone mode loads the whole module from source, so the
// interprocedural analyzers (persistorder, faultcover, aliasescape,
// lockorder) see summaries across package boundaries; this is the mode CI
// and `make pmblade-vet` enforce. Under the go vet protocol each package is
// checked against export data only, so cross-package summaries degrade to
// the intrinsic device models — sound but less complete.
//
// Exit status is non-zero when any unsuppressed, unbaselined diagnostic is
// reported. Suppressions (//pmblade:allow <analyzer> <reason>) and the
// policy for them are documented in DESIGN.md §5.3; the baseline file and
// its policy in DESIGN.md §5.7.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pmblade/internal/analysis"
	"pmblade/internal/analysis/suite"
)

const version = "v0.2.0"

func main() {
	args := os.Args[1:]
	// The go command probes vet tools before use: -V=full must print
	// "<name> version <ver>" for the build cache, and -flags must dump the
	// tool's flag set as JSON (none that go vet should forward).
	for _, a := range args {
		switch a {
		case "-V=full", "-V":
			fmt.Printf("%s version %s\n", filepath.Base(os.Args[0]), version)
			return
		case "-flags":
			fmt.Println("[]")
			return
		case "help", "-help", "--help":
			usage()
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheckerMain(args[0]))
	}
	os.Exit(standaloneMain(args))
}

func usage() {
	fmt.Println("usage: pmblade-vet [flags] [package-dirs | ./...]")
	fmt.Println("       go vet -vettool=$(which pmblade-vet) ./...")
	fmt.Println()
	fmt.Println("flags (standalone mode only):")
	fmt.Println("  -json FILE            write all findings (including baselined) as JSON")
	fmt.Println("  -baseline FILE        tolerate findings recorded in FILE")
	fmt.Println("  -write-baseline FILE  write current findings to FILE, keeping existing justifications")
	fmt.Println()
	fmt.Println("analyzers:")
	for _, a := range suite.Analyzers() {
		fmt.Printf("  %-16s %s\n", a.Name, a.Doc)
	}
	fmt.Println()
	fmt.Println("suppress a finding with `//pmblade:allow <analyzer> <reason>` on or")
	fmt.Println("above the flagged line (policy: DESIGN.md §5.3); tolerate a reviewed")
	fmt.Println("finding with a justified entry in vet-baseline.json (DESIGN.md §5.7).")
}

// moduleRoot walks up from dir to the directory containing go.mod.
func moduleRoot(dir string) (root, modPath string, err error) {
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func standaloneMain(args []string) int {
	fs := flag.NewFlagSet("pmblade-vet", flag.ContinueOnError)
	jsonOut := fs.String("json", "", "write all findings (including baselined) as JSON to `file`")
	baselinePath := fs.String("baseline", "", "tolerate findings recorded in the baseline `file`")
	writeBaseline := fs.String("write-baseline", "", "write current findings to the baseline `file`, preserving justifications")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	args = fs.Args()

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	root, modPath, err := moduleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmblade-vet:", err)
		return 1
	}
	loader := analysis.NewLoader(modPath, root)

	var paths []string
	if len(args) == 0 {
		args = []string{"./..."}
	}
	for _, arg := range args {
		if arg == "./..." || arg == "all" {
			all, err := loader.ModulePackages()
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmblade-vet:", err)
				return 1
			}
			paths = append(paths, all...)
			continue
		}
		abs := arg
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(wd, arg)
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			fmt.Fprintf(os.Stderr, "pmblade-vet: %s is outside the module\n", arg)
			return 1
		}
		if rel == "." {
			paths = append(paths, modPath)
		} else {
			paths = append(paths, modPath+"/"+filepath.ToSlash(rel))
		}
	}

	var baseline *analysis.Baseline
	if *baselinePath != "" || *writeBaseline != "" {
		bp := *baselinePath
		if bp == "" {
			bp = *writeBaseline
		}
		baseline, err = analysis.LoadBaseline(bp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmblade-vet:", err)
			return 1
		}
	} else {
		baseline = &analysis.Baseline{}
	}

	exit := 0
	var findings []analysis.Finding
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmblade-vet:", err)
			exit = 1
			continue
		}
		for _, a := range suite.Analyzers() {
			diags, err := analysis.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmblade-vet:", err)
				exit = 1
				continue
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				f := analysis.Finding{
					Analyzer: d.Analyzer,
					File:     analysis.RelFile(root, pos.Filename),
					Line:     pos.Line,
					Col:      pos.Column,
					Message:  d.Message,
				}
				f.Baselined = baseline.Match(f.Analyzer, f.File, f.Message)
				findings = append(findings, f)
				if f.Baselined {
					continue
				}
				fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
				exit = 1
			}
		}
	}

	if *jsonOut != "" {
		if err := analysis.WriteFindingsJSON(*jsonOut, findings); err != nil {
			fmt.Fprintln(os.Stderr, "pmblade-vet:", err)
			return 1
		}
	}
	if *writeBaseline != "" {
		merged := analysis.MergeBaseline(baseline, findings)
		if err := analysis.WriteBaseline(*writeBaseline, merged); err != nil {
			fmt.Fprintln(os.Stderr, "pmblade-vet:", err)
			return 1
		}
		todo := 0
		for _, e := range merged.Entries {
			if e.Justification == "TODO: justify or fix" {
				todo++
			}
		}
		fmt.Printf("pmblade-vet: wrote %d baseline entries to %s", len(merged.Entries), *writeBaseline)
		if todo > 0 {
			fmt.Printf(" (%d need a justification before check-in)", todo)
		}
		fmt.Println()
		return 0 // regenerating the baseline is never a failure
	}
	return exit
}
