// pmblade-vet runs the engine's invariant analyzers (lockorder, guardedby,
// nodrop, nondeterminism, crcbeforeuse) over the module. It works two ways:
//
// Standalone, from anywhere inside the module:
//
//	pmblade-vet ./...                 # whole module (the default)
//	pmblade-vet ./internal/engine     # specific package directories
//
// As a go vet tool, which runs it with go's own build graph and caching:
//
//	go vet -vettool=$(which pmblade-vet) ./...
//
// Exit status is non-zero when any unsuppressed diagnostic is reported.
// Suppressions (//pmblade:allow <analyzer> <reason>) and the policy for them
// are documented in DESIGN.md §5.3.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pmblade/internal/analysis"
	"pmblade/internal/analysis/suite"
)

const version = "v0.1.0"

func main() {
	args := os.Args[1:]
	// The go command probes vet tools before use: -V=full must print
	// "<name> version <ver>" for the build cache, and -flags must dump the
	// tool's flag set as JSON (we have none).
	for _, a := range args {
		switch a {
		case "-V=full", "-V":
			fmt.Printf("%s version %s\n", filepath.Base(os.Args[0]), version)
			return
		case "-flags":
			fmt.Println("[]")
			return
		case "help", "-help", "--help":
			usage()
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheckerMain(args[0]))
	}
	os.Exit(standaloneMain(args))
}

func usage() {
	fmt.Println("usage: pmblade-vet [package-dirs | ./...]")
	fmt.Println("       go vet -vettool=$(which pmblade-vet) ./...")
	fmt.Println()
	fmt.Println("analyzers:")
	for _, a := range suite.Analyzers() {
		fmt.Printf("  %-16s %s\n", a.Name, a.Doc)
	}
	fmt.Println()
	fmt.Println("suppress a finding with `//pmblade:allow <analyzer> <reason>` on or")
	fmt.Println("above the flagged line (policy: DESIGN.md §5.3).")
}

// moduleRoot walks up from dir to the directory containing go.mod.
func moduleRoot(dir string) (root, modPath string, err error) {
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func standaloneMain(args []string) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	root, modPath, err := moduleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmblade-vet:", err)
		return 1
	}
	loader := analysis.NewLoader(modPath, root)

	var paths []string
	if len(args) == 0 {
		args = []string{"./..."}
	}
	for _, arg := range args {
		if arg == "./..." || arg == "all" {
			all, err := loader.ModulePackages()
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmblade-vet:", err)
				return 1
			}
			paths = append(paths, all...)
			continue
		}
		abs := arg
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(wd, arg)
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			fmt.Fprintf(os.Stderr, "pmblade-vet: %s is outside the module\n", arg)
			return 1
		}
		if rel == "." {
			paths = append(paths, modPath)
		} else {
			paths = append(paths, modPath+"/"+filepath.ToSlash(rel))
		}
	}

	exit := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmblade-vet:", err)
			exit = 1
			continue
		}
		for _, a := range suite.Analyzers() {
			diags, err := analysis.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmblade-vet:", err)
				exit = 1
				continue
			}
			for _, d := range diags {
				fmt.Printf("%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
				exit = 1
			}
		}
	}
	return exit
}
