package main

// The go vet driver protocol ("unitchecker"): `go vet -vettool=pmblade-vet`
// invokes the tool once per package with a single JSON .cfg argument that
// names the package's source files and the export data of its already-built
// dependencies. The tool type-checks from that export data (no source
// re-traversal of the import graph), prints findings to stderr, writes the
// (empty — we export no facts) .vetx facts file go expects, and exits 2 when
// it found anything. This mirrors x/tools' unitchecker, which this repo
// cannot depend on.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"

	"pmblade/internal/analysis"
	"pmblade/internal/analysis/suite"
)

// vetConfig is the subset of the go command's vet config we consume.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheckerMain(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmblade-vet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "pmblade-vet: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// Facts file first: go vet requires it to exist even on failure, and we
	// have no cross-package facts to record.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "pmblade-vet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "pmblade-vet:", err)
			return 1
		}
		files = append(files, f)
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImp.Import(importPath)
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tconf := types.Config{Importer: imp, Error: func(error) {}}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "pmblade-vet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &analysis.Package{Path: cfg.ImportPath, Dir: cfg.Dir, Fset: fset, Files: files, Types: tpkg, Info: info}
	var diags []analysis.Diagnostic
	for _, a := range suite.Analyzers() {
		ds, err := analysis.RunAnalyzer(a, pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmblade-vet:", err)
			return 1
		}
		diags = append(diags, ds...)
	}
	if len(diags) == 0 {
		return 0
	}
	// Both drivers honor the same checked-in baseline: walk up from the
	// package directory to the module root and drop tolerated findings.
	baseline := &analysis.Baseline{}
	var modRoot string
	if root, _, err := moduleRoot(cfg.Dir); err == nil {
		modRoot = root
		if b, err := analysis.LoadBaseline(filepath.Join(root, "vet-baseline.json")); err == nil {
			baseline = b
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	exit := 0
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if modRoot != "" && baseline.Match(d.Analyzer, analysis.RelFile(modRoot, pos.Filename), d.Message) {
			continue
		}
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pos, d.Analyzer, d.Message)
		exit = 2
	}
	return exit
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
