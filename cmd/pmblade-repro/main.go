// Command pmblade-repro regenerates the tables and figures of the PM-Blade
// paper's evaluation on the simulated devices.
//
// Usage:
//
//	pmblade-repro                 # run everything at default scale
//	pmblade-repro -exp fig9       # one experiment
//	pmblade-repro -scale 2.0      # bigger datasets (slower, smoother curves)
//	pmblade-repro -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pmblade/internal/clock"
	"pmblade/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id (empty = all)")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	clock.Calibrate()
	s := experiments.Scale{Factor: *scale}
	start := time.Now()
	if *exp == "" {
		experiments.RunAll(s, os.Stdout)
	} else if _, err := experiments.Run(*exp, s, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\ndone in %v\n", time.Since(start).Round(time.Millisecond))
}
