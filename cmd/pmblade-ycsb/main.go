// Command pmblade-ycsb runs YCSB workloads (Load, A-F) against PM-Blade or
// one of the baselines and reports throughput and latency.
//
// Examples:
//
//	pmblade-ycsb -workloads load,a,b,c -records 100000 -ops 20000
//	pmblade-ycsb -system matrixkv -pm 8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"pmblade"
	"pmblade/internal/clock"
	"pmblade/internal/experiments"
	"pmblade/internal/matrixkv"
	"pmblade/internal/pmem"
	"pmblade/internal/ssd"
	"pmblade/internal/ycsb"
)

// store abstracts the two engines for the driver.
type store interface {
	Put(key, value []byte) error
	Get(key []byte) ([]byte, bool, error)
	ScanN(start []byte, n int) error
}

type engineStore struct{ db *pmblade.DB }

func (s engineStore) Put(k, v []byte) error              { return s.db.Put(k, v) }
func (s engineStore) Get(k []byte) ([]byte, bool, error) { return s.db.Get(k) }
func (s engineStore) ScanN(start []byte, n int) error {
	_, err := s.db.Scan(start, nil, n)
	return err
}

type matrixStore struct{ db *matrixkv.DB }

func (s matrixStore) Put(k, v []byte) error              { return s.db.Put(k, v) }
func (s matrixStore) Get(k []byte) ([]byte, bool, error) { return s.db.Get(k) }
func (s matrixStore) ScanN(start []byte, n int) error {
	_, err := s.db.Scan(start, nil, n)
	return err
}

func main() {
	system := flag.String("system", "pmblade", "pmblade | pmblade-pm | pmblade-ssd | rocksdb | matrixkv")
	records := flag.Uint64("records", 50000, "records to load")
	ops := flag.Int("ops", 10000, "operations per workload")
	valueSize := flag.Int("value", 512, "value size")
	workloads := flag.String("workloads", "load,a,b,c,d,e,f", "comma-separated workload list")
	pmMB := flag.Int64("pm", 128, "PM capacity in MiB")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()
	clock.Calibrate()

	var st store
	switch *system {
	case "matrixkv":
		st = matrixStore{matrixkv.Open(matrixkv.Config{
			PMCapacity:    *pmMB << 20,
			PMProfile:     pmem.OptaneProfile,
			SSDProfile:    ssd.NVMeProfile,
			MemtableBytes: 4 << 20,
			DisableWAL:    true,
		})}
	default:
		sysName := map[string]string{
			"pmblade":     experiments.SysPMBlade,
			"pmblade-pm":  experiments.SysPMBladePM,
			"pmblade-ssd": experiments.SysPMBladeSSD,
			"rocksdb":     experiments.SysRocksDB,
		}[*system]
		if sysName == "" {
			fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
			os.Exit(1)
		}
		cfg := experiments.SystemConfig(sysName, experiments.EngineParams{
			PMCapacity:    *pmMB << 20,
			MemtableBytes: 4 << 20,
			Realistic:     true,
		})
		db, err := pmblade.OpenEngine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer db.Close()
		st = engineStore{db}
	}

	for _, name := range strings.Split(*workloads, ",") {
		name = strings.TrimSpace(name)
		count := *ops
		if name == "load" {
			count = int(*records)
		}
		w, err := ycsb.New(name, *records, *valueSize, *seed)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < count; i++ {
			op := w.Next()
			switch op.Kind {
			case ycsb.OpRead:
				_, _, err = st.Get(op.Key)
			case ycsb.OpUpdate, ycsb.OpInsert:
				err = st.Put(op.Key, op.Value)
			case ycsb.OpScan:
				err = st.ScanN(op.Key, op.ScanLen)
			case ycsb.OpRMW:
				if _, _, err = st.Get(op.Key); err == nil {
					err = st.Put(op.Key, op.Value)
				}
			}
			if err != nil {
				log.Fatalf("workload %s op %d: %v", name, i, err)
			}
		}
		elapsed := time.Since(start)
		fmt.Printf("%-5s %8d ops  %10v  %9.0f ops/s\n",
			name, count, elapsed.Round(time.Millisecond), float64(count)/elapsed.Seconds())
	}
}
