// Command pmblade-crash runs the crash-point recovery torture harness
// (internal/fault/crashtest): a seeded workload is replayed once per
// durability-relevant device operation with a power cut armed at that
// operation, and recovery from each resulting crash image is checked against
// an in-memory oracle.
//
// With -scrub it instead runs the bit-rot soak: seeded at-rest corruption is
// injected into the live table images and the scrub → quarantine → restart →
// repair lifecycle is checked end to end.
//
// Usage:
//
//	pmblade-crash -seed 1 -ops 1000            # exhaustive enumeration
//	pmblade-crash -seed 7 -ops 2000 -sample 500
//	pmblade-crash -seed 1 -ops 1000 -point 137 # reproduce one failure
//	pmblade-crash -scrub -seed 1 -rots 50      # bit-rot soak
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pmblade/internal/fault/crashtest"
)

func main() {
	seed := flag.Int64("seed", 1, "workload / fault-schedule seed")
	ops := flag.Int("ops", 1000, "client operations in the workload")
	sample := flag.Int("sample", 0, "test only this many seeded-sampled crash points (0 = exhaustive)")
	ckpt := flag.Int("checkpoint-every", 64, "insert an engine checkpoint every N client ops (-1 disables)")
	point := flag.Int("point", 0, "test exactly this crash point (reproduction mode)")
	scrub := flag.Bool("scrub", false, "run the bit-rot soak instead of the crash torture")
	rots := flag.Int("rots", 50, "distinct corruptions to inject (soak mode)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	if *scrub {
		sopts := crashtest.SoakOptions{
			Seed:            *seed,
			Ops:             *ops,
			Rots:            *rots,
			CheckpointEvery: *ckpt,
		}
		if !*quiet {
			sopts.Log = func(format string, args ...any) {
				log.Printf(format, args...)
			}
		}
		rep, err := crashtest.RunSoak(sopts)
		if err != nil {
			log.Fatalf("pmblade-crash -scrub: %v", err)
		}
		fmt.Print(rep.String())
		if len(rep.Failures) > 0 {
			os.Exit(1)
		}
		return
	}

	opts := crashtest.Options{
		Seed:            *seed,
		Ops:             *ops,
		Sample:          *sample,
		CheckpointEvery: *ckpt,
	}
	if *point > 0 {
		opts.Only = []int{*point}
	}
	if !*quiet {
		opts.Log = func(format string, args ...any) {
			log.Printf(format, args...)
		}
	}
	rep, err := crashtest.Run(opts)
	if err != nil {
		log.Fatalf("pmblade-crash: %v", err)
	}
	fmt.Print(rep.String())
	if len(rep.Failures) > 0 {
		os.Exit(1)
	}
}
