// Command pmblade-bench is the micro-benchmark driver (the paper's
// benchmark_kv, its extension of RocksDB's db_bench): basic key-value
// benchmarks plus record-table and index-table workloads on the database
// layer.
//
// Examples:
//
//	pmblade-bench -bench fillseq -n 100000
//	pmblade-bench -bench fillrandom -n 100000 -value 1024
//	pmblade-bench -bench readrandom -n 50000
//	pmblade-bench -bench indextable -n 20000
//	pmblade-bench -bench scan -n 1000 -scanlen 100
//	pmblade-bench -system rocksdb -bench fillrandom
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"pmblade"
	"pmblade/internal/clock"
	"pmblade/internal/experiments"
)

func main() {
	bench := flag.String("bench", "fillrandom", "fillseq | fillrandom | readrandom | readwrite | scan | indextable")
	n := flag.Int("n", 50000, "operation count")
	valueSize := flag.Int("value", 256, "value size in bytes")
	scanLen := flag.Int("scanlen", 100, "entries per scan")
	system := flag.String("system", "pmblade", "pmblade | pmblade-pm | pmblade-ssd | rocksdb")
	pmMB := flag.Int64("pm", 256, "PM capacity in MiB")
	realistic := flag.Bool("realistic", true, "use calibrated device latency models")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()
	clock.Calibrate()

	sysName := map[string]string{
		"pmblade":     experiments.SysPMBlade,
		"pmblade-pm":  experiments.SysPMBladePM,
		"pmblade-ssd": experiments.SysPMBladeSSD,
		"rocksdb":     experiments.SysRocksDB,
	}[*system]
	if sysName == "" {
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(1)
	}
	cfg := experiments.SystemConfig(sysName, experiments.EngineParams{
		PMCapacity:    *pmMB << 20,
		MemtableBytes: 4 << 20,
		Realistic:     *realistic,
	})
	db, err := pmblade.OpenEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(*seed))
	val := make([]byte, *valueSize)
	rng.Read(val)
	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%012d", i)) }

	start := time.Now()
	ops := *n
	switch *bench {
	case "fillseq":
		for i := 0; i < ops; i++ {
			must(db.Put(key(i), val))
		}
	case "fillrandom":
		for i := 0; i < ops; i++ {
			must(db.Put(key(rng.Intn(ops)), val))
		}
	case "readrandom":
		for i := 0; i < ops; i++ {
			must(db.Put(key(i), val))
		}
		must(db.Flush())
		start = time.Now()
		for i := 0; i < ops; i++ {
			if _, _, err := db.Get(key(rng.Intn(ops))); err != nil {
				log.Fatal(err)
			}
		}
	case "readwrite":
		for i := 0; i < ops; i++ {
			if rng.Intn(2) == 0 {
				must(db.Put(key(rng.Intn(ops)), val))
			} else if _, _, err := db.Get(key(rng.Intn(ops))); err != nil {
				log.Fatal(err)
			}
		}
	case "scan":
		for i := 0; i < 50000; i++ {
			must(db.Put(key(i), val))
		}
		must(db.Flush())
		start = time.Now()
		for i := 0; i < ops; i++ {
			lo := rng.Intn(50000)
			if _, err := db.Scan(key(lo), nil, *scanLen); err != nil {
				log.Fatal(err)
			}
		}
	case "indextable":
		// The paper's extension: record tables + secondary-index tables.
		tbl := db.Table(1)
		for i := 0; i < ops; i++ {
			pk := []byte(fmt.Sprintf("pk-%010d", i))
			must(tbl.InsertRow(pk, val))
			must(tbl.AddIndexEntry(1, []byte(fmt.Sprintf("status-%d", i%7)), pk))
			must(tbl.AddIndexEntry(2, []byte(fmt.Sprintf("city-%03d", rng.Intn(300))), pk))
		}
		start = time.Now()
		lookups := ops / 10
		for i := 0; i < lookups; i++ {
			if _, err := tbl.LookupIndex(1, []byte(fmt.Sprintf("status-%d", rng.Intn(7))), 20); err != nil {
				log.Fatal(err)
			}
		}
		ops = lookups
	default:
		fmt.Fprintf(os.Stderr, "unknown bench %q\n", *bench)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	m := db.Metrics()
	wa := db.WriteAmp()
	fmt.Printf("%s/%s: %d ops in %v (%.0f ops/s, %.2f us/op)\n",
		*system, *bench, ops, elapsed.Round(time.Millisecond),
		float64(ops)/elapsed.Seconds(), float64(elapsed.Microseconds())/float64(ops))
	fmt.Printf("  read  %v | write %v | scan %v\n",
		m.ReadLatency, m.WriteLatency, m.ScanLatency)
	fmt.Printf("  flush=%d internal=%d major=%d | WA %.2f (PM %dMB, SSD %dMB) | PM hit %.0f%%\n",
		m.FlushCount.Load(), m.InternalCount.Load(), m.MajorCount.Load(),
		wa.Factor(), wa.PMBytes>>20, (wa.SSDBytes-wa.SSDWALBytes)>>20, 100*m.PMHitRatio())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
